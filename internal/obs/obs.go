// Package obs is the simulator's structured observability layer: a
// zero-cost-when-off event stream emitted by the interconnect and the
// protocol handlers, a live metrics registry derived from it, and a
// Perfetto/Chrome trace_event exporter.
//
// The design follows the network.Chaos pattern: producers hold a *Sink
// pointer that is nil by default, so the disabled path costs exactly one
// pointer compare per potential event and allocates nothing. When a sink
// is attached, events are value-typed records stored into a preallocated
// ring — no per-event allocation — while the sink's Metrics aggregate
// every event ever emitted (so totals stay exact even after the ring
// wraps).
package obs

import (
	"pccsim/internal/msg"
	"pccsim/internal/sim"
)

// Kind enumerates the protocol events the simulator emits.
type Kind uint8

const (
	// KindSend is a packet injected into the interconnect (or the hub's
	// internal crossbar is NOT included — self-sends bypass the network,
	// exactly as they bypass Stats traffic accounting). Msg holds the
	// full packet; Hops and Bytes the fat-tree route cost.
	KindSend Kind = iota
	// KindMissStart is an MSHR allocation: an L2 miss transaction began
	// at Node for Addr. Arg is the MSHR occupancy after allocation;
	// Arg2 is 1 for a write (exclusive) miss, 0 for a read.
	KindMissStart
	// KindMissEnd retires a miss transaction. Arg is the occupancy after
	// retirement; Arg2 is the stats.MissClass the miss resolved to.
	KindMissEnd
	// KindPCDetect: the home's directory-cache detector classified Addr
	// as producer-consumer (§2.2). Node is the home.
	KindPCDetect
	// KindDelegate: the home decided to delegate Addr and sent the
	// DELEGATE message (§2.3.1). Node is the home; Arg the producer.
	KindDelegate
	// KindDelegateInstall: the producer installed the delegated
	// directory entry. Node is the producer; Arg the producer-table
	// occupancy after the install.
	KindDelegateInstall
	// KindUndelegate: the producer handed the line back (§2.3.3). Node
	// is the producer; Arg is the stats.UndelegateReason (cause a/b/c);
	// Arg2 is 1 when the delegation was never installed (saturated
	// producer table).
	KindUndelegate
	// KindUndelegateCommit: the home restored directory control. Node is
	// the home; Arg the former producer.
	KindUndelegateCommit
	// KindIntervention: a producer copy was downgraded for consumers.
	// Arg2 distinguishes the flavour: 0 = demand 3-hop intervention at
	// the home, 1 = the §2.4.1 delayed intervention fired, 2 = an early
	// consumer read forced the downgrade at the delegated home.
	KindIntervention
	// KindUpdatePush: a speculative update left the producer (§2.4.2).
	// Node is the producer; Arg the consumer; Arg2 the data version.
	KindUpdatePush
	// KindUpdateHit: a pushed update was consumed by a read (a RAC hit
	// or a match against an outstanding miss). Node is the consumer;
	// Arg2 the version.
	KindUpdateHit
	// KindUpdateWaste: a pushed update died unread (overwritten, evicted
	// or refused for lack of RAC space). Node is the consumer.
	KindUpdateWaste
	numKinds
)

var kindNames = [...]string{
	KindSend:            "send",
	KindMissStart:       "miss-start",
	KindMissEnd:         "miss-end",
	KindPCDetect:        "pc-detect",
	KindDelegate:        "delegate",
	KindDelegateInstall: "delegate-install",
	KindUndelegate:      "undelegate",
	KindUndelegateCommit: "undelegate-commit",
	KindIntervention:    "intervention",
	KindUpdatePush:      "update-push",
	KindUpdateHit:       "update-hit",
	KindUpdateWaste:     "update-waste",
}

// NumKinds is the number of distinct event kinds.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Event is one observability record. Events are value types: emitting one
// never allocates, and the ring stores them inline.
type Event struct {
	// At is the simulation time of the event, in processor cycles.
	At sim.Time
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind
	// Node is the hub at which the event happened (the sender for
	// KindSend).
	Node msg.NodeID
	// Addr is the cache line involved (line-aligned).
	Addr msg.Addr
	// Hops is the fat-tree route length of a KindSend (0 would be a
	// self-send, which never reaches the network; so 1 or 2).
	Hops uint8
	// Bytes is the on-wire packet size of a KindSend.
	Bytes uint32
	// Arg and Arg2 carry kind-specific payloads; see the Kind constants.
	Arg, Arg2 uint64
	// Msg is the full packet of a KindSend (copied: the protocol pools
	// and reuses message structs).
	Msg msg.Message
}

// Sink receives events. The zero value is not useful; see NewSink.
//
// A Sink is attached by storing its pointer into the producer's hook field
// (network.Network.Obs, core.System.Obs); producers nil-check the pointer
// before building an event, so a detached sink costs nothing.
type Sink struct {
	// M aggregates every emitted event; it is updated live so its
	// counters and per-line timelines remain exact even after the ring
	// has wrapped.
	M Metrics
	// Tap, when non-nil, receives every event as it is emitted (after
	// the ring store). It is how secondary consumers — the trace
	// recorder, fault-repro capture — ride one sink.
	Tap func(Event)

	ring      []Event
	next      int
	wrapped   bool
	unbounded bool
	buffer    bool
	total     uint64
	staged    []Event
}

// NewSink returns a sink retaining events per capacity: capacity > 0 keeps
// the most recent capacity events in a preallocated ring; capacity == 0
// keeps no events (metrics and tap only); capacity < 0 retains everything
// (the ring grows without bound — use only for short runs being exported).
func NewSink(capacity int) *Sink {
	s := &Sink{}
	s.M.init()
	switch {
	case capacity > 0:
		s.ring = make([]Event, capacity)
	case capacity < 0:
		s.unbounded = true
	}
	return s
}

// NewBuffer returns a sink in staging mode, used as one shard's private
// event buffer on the sharded scheduler. Emit only appends to an internal
// slice — no ring, no metrics, no tap — so events can be re-emitted into
// the real user sink at a window barrier without double-counting. The
// owning shard emits during a window; the coordinator drains with
// Buffered/ResetBuffer between windows.
func NewBuffer() *Sink {
	s := &Sink{buffer: true}
	s.M.init()
	return s
}

// Buffered returns the staged events of a NewBuffer sink, in emission
// order. The slice is only valid until the next Emit or ResetBuffer.
func (s *Sink) Buffered() []Event { return s.staged }

// ResetBuffer clears a staging sink, retaining capacity.
func (s *Sink) ResetBuffer() { s.staged = s.staged[:0] }

// Emit records one event: ring store, metrics aggregation, tap. It never
// allocates on the counter paths; per-line timeline kinds may grow the
// metrics map (they are rare — delegation lifecycle, not per-message).
func (s *Sink) Emit(e Event) {
	if s.buffer {
		s.staged = append(s.staged, e)
		return
	}
	s.total++
	if s.unbounded {
		s.ring = append(s.ring, e)
	} else if len(s.ring) > 0 {
		s.ring[s.next] = e
		s.next++
		if s.next == len(s.ring) {
			s.next = 0
			s.wrapped = true
		}
	}
	s.M.observe(&e)
	if s.Tap != nil {
		s.Tap(e)
	}
}

// Total reports how many events were emitted (including ones the ring has
// since overwritten).
func (s *Sink) Total() uint64 { return s.total }

// Events returns the retained events in emission order.
func (s *Sink) Events() []Event {
	if s.unbounded {
		out := make([]Event, len(s.ring))
		copy(out, s.ring)
		return out
	}
	var out []Event
	if s.wrapped {
		out = append(out, s.ring[s.next:]...)
		out = append(out, s.ring[:s.next]...)
	} else {
		out = append(out, s.ring[:s.next]...)
	}
	return out
}
