package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

func send(at uint64, t msg.Type, src, dst msg.NodeID, addr msg.Addr, hops uint8) Event {
	m := msg.Message{Type: t, Src: src, Dst: dst, Addr: addr}
	return Event{At: sim.Time(at), Kind: KindSend, Node: src, Addr: addr,
		Hops: hops, Bytes: uint32(m.Bytes()), Msg: m}
}

func TestSinkRingWrap(t *testing.T) {
	s := NewSink(4)
	for i := 0; i < 10; i++ {
		s.Emit(send(uint64(i), msg.GetShared, 0, 1, msg.Addr(i*128), 2))
	}
	if s.Total() != 10 {
		t.Fatalf("Total = %d, want 10", s.Total())
	}
	evs := s.Events()
	if len(evs) != 4 || evs[0].Addr != 6*128 || evs[3].Addr != 9*128 {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	// Metrics must cover all ten, not just the retained window.
	if s.M.MsgCount[msg.GetShared] != 10 {
		t.Fatalf("metrics count = %d, want 10", s.M.MsgCount[msg.GetShared])
	}
}

func TestSinkCapacityModes(t *testing.T) {
	none := NewSink(0)
	none.Emit(send(1, msg.GetShared, 0, 1, 0x100, 1))
	if len(none.Events()) != 0 || none.Total() != 1 || none.M.Events != 1 {
		t.Fatalf("capacity-0 sink misbehaved: %d events, total %d", len(none.Events()), none.Total())
	}
	unbounded := NewSink(-1)
	for i := 0; i < 5000; i++ {
		unbounded.Emit(send(uint64(i), msg.GetShared, 0, 1, 0x100, 1))
	}
	if len(unbounded.Events()) != 5000 {
		t.Fatalf("unbounded sink retained %d events", len(unbounded.Events()))
	}
}

func TestTapSeesEveryEvent(t *testing.T) {
	s := NewSink(2)
	var tapped int
	s.Tap = func(e Event) { tapped++ }
	for i := 0; i < 7; i++ {
		s.Emit(send(uint64(i), msg.Update, 0, 1, 0x100, 2))
	}
	if tapped != 7 {
		t.Fatalf("tap saw %d events, want 7", tapped)
	}
}

func TestDelegationSpanPairing(t *testing.T) {
	s := NewSink(64)
	addr := msg.Addr(0x1000)
	// Two full delegations to the same producer, causes b then c.
	s.Emit(Event{At: 5, Kind: KindPCDetect, Node: 0, Addr: addr})
	s.Emit(Event{At: 10, Kind: KindDelegate, Node: 0, Addr: addr, Arg: 2})
	s.Emit(Event{At: 20, Kind: KindDelegateInstall, Node: 2, Addr: addr, Arg: 1})
	s.Emit(Event{At: 30, Kind: KindUndelegate, Node: 2, Addr: addr, Arg: uint64(stats.UndelFlush)})
	s.Emit(Event{At: 40, Kind: KindUndelegateCommit, Node: 0, Addr: addr, Arg: 2})
	s.Emit(Event{At: 50, Kind: KindDelegate, Node: 0, Addr: addr, Arg: 2})
	s.Emit(Event{At: 60, Kind: KindDelegateInstall, Node: 2, Addr: addr, Arg: 1})
	s.Emit(Event{At: 70, Kind: KindUndelegate, Node: 2, Addr: addr, Arg: uint64(stats.UndelRemoteWrite)})

	l := s.M.Lines[addr]
	if l == nil || !l.PCDetected || l.PCDetectAt != 5 {
		t.Fatalf("line timeline missing PC detection: %+v", l)
	}
	if len(l.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(l.Spans))
	}
	a, b := l.Spans[0], l.Spans[1]
	if !a.Complete() || a.Cause != stats.UndelFlush || !a.Committed || a.CommittedAt != 40 {
		t.Fatalf("span 1 wrong: %+v", a)
	}
	if !b.Complete() || b.Cause != stats.UndelRemoteWrite || b.Committed {
		t.Fatalf("span 2 wrong: %+v", b)
	}
	if s.M.CompleteDelegations() != 2 {
		t.Fatalf("CompleteDelegations = %d", s.M.CompleteDelegations())
	}
	if s.M.Undelegations[stats.UndelFlush] != 1 || s.M.Undelegations[stats.UndelRemoteWrite] != 1 {
		t.Fatalf("undelegation causes wrong: %v", s.M.Undelegations)
	}
}

func TestHopAndByteAccounting(t *testing.T) {
	s := NewSink(0)
	s.Emit(send(1, msg.GetShared, 0, 1, 0x100, 1))  // header only
	s.Emit(send(2, msg.SharedReply, 1, 0, 0x100, 1)) // carries data
	s.Emit(send(3, msg.GetShared, 0, 9, 0x200, 2))
	wantBytes := uint64(msg.HeaderBytes*2 + msg.HeaderBytes + msg.LineBytes)
	if s.M.TotalBytes() != wantBytes {
		t.Fatalf("TotalBytes = %d, want %d", s.M.TotalBytes(), wantBytes)
	}
	if s.M.HopCount[1] != 2 || s.M.HopCount[2] != 1 {
		t.Fatalf("hop histogram wrong: %v", s.M.HopCount)
	}
	if got := s.M.AvgHops(); got < 1.32 || got > 1.34 {
		t.Fatalf("AvgHops = %v, want ~4/3", got)
	}
}

func TestMSHRPeakTracking(t *testing.T) {
	s := NewSink(0)
	s.Emit(Event{At: 1, Kind: KindMissStart, Node: 0, Addr: 0x100, Arg: 1})
	s.Emit(Event{At: 2, Kind: KindMissStart, Node: 1, Addr: 0x200, Arg: 1})
	s.Emit(Event{At: 3, Kind: KindMissEnd, Node: 0, Addr: 0x100, Arg: 0, Arg2: uint64(stats.MissRemote2Hop)})
	s.Emit(Event{At: 4, Kind: KindMissEnd, Node: 1, Addr: 0x200, Arg: 0, Arg2: uint64(stats.MissRemote3Hop)})
	if s.M.MSHRPeak != 2 {
		t.Fatalf("MSHRPeak = %d, want 2", s.M.MSHRPeak)
	}
	if s.M.MissEnds[stats.MissRemote2Hop] != 1 || s.M.MissEnds[stats.MissRemote3Hop] != 1 {
		t.Fatalf("miss classes wrong: %v", s.M.MissEnds)
	}
}

// TestEmitZeroAlloc pins the enabled-path allocation claim: counter-kind
// events into a preallocated ring allocate nothing.
func TestEmitZeroAlloc(t *testing.T) {
	s := NewSink(1024)
	e := send(1, msg.GetShared, 0, 1, 0x100, 2)
	allocs := testing.AllocsPerRun(1000, func() { s.Emit(e) })
	if allocs != 0 {
		t.Fatalf("Emit allocated %v times per event", allocs)
	}
}

func TestWritePerfetto(t *testing.T) {
	s := NewSink(-1)
	addr := msg.Addr(0x2000)
	s.Emit(send(5, msg.GetExcl, 1, 0, addr, 2))
	s.Emit(Event{At: 6, Kind: KindMissStart, Node: 1, Addr: addr, Arg: 1, Arg2: 1})
	s.Emit(Event{At: 10, Kind: KindDelegate, Node: 0, Addr: addr, Arg: 1})
	s.Emit(Event{At: 20, Kind: KindDelegateInstall, Node: 1, Addr: addr, Arg: 1})
	s.Emit(Event{At: 25, Kind: KindMissEnd, Node: 1, Addr: addr, Arg: 0, Arg2: uint64(stats.MissRemote2Hop)})
	s.Emit(Event{At: 30, Kind: KindUpdatePush, Node: 1, Addr: addr, Arg: 3, Arg2: 7})
	s.Emit(Event{At: 40, Kind: KindUndelegate, Node: 1, Addr: addr, Arg: uint64(stats.UndelRemoteWrite)})

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, s); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"delegated to n1"`, `"GetExcl"`, `"miss 0x2000"`, `"update-push"`,
		`"protocol nodes"`, `"cache lines"`, `"remote-write"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%s", want, out)
		}
	}
	md := doc.Metadata
	if md["total_bytes"].(float64) != float64(msg.HeaderBytes) {
		t.Fatalf("metadata total_bytes = %v", md["total_bytes"])
	}
	if md["delegations"].(float64) != 1 {
		t.Fatalf("metadata delegations = %v", md["delegations"])
	}
}

func BenchmarkEmitSend(b *testing.B) {
	s := NewSink(4096)
	e := send(1, msg.GetShared, 0, 1, 0x100, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(e)
	}
}
