// Package trace records and renders coherence-message timelines: the
// debugging view protocol architects actually read — per-line lifecycles
// of requests, interventions, delegations and update pushes. It rides the
// observability layer (internal/obs) as a tap on the interconnect's event
// sink, keeps a bounded ring of events, and can render either a raw
// timeline or a per-line protocol story.
package trace

import (
	"fmt"
	"io"
	"sort"

	"pccsim/internal/msg"
	"pccsim/internal/network"
	"pccsim/internal/obs"
	"pccsim/internal/sim"
)

// Event is one traced message send.
type Event struct {
	At  sim.Time
	Msg msg.Message // copied: the protocol reuses message structs
}

// Filter selects which messages to record; nil fields match everything.
type Filter struct {
	// Addr restricts to one line (0 = all).
	Addr msg.Addr
	// Node restricts to messages sent or received by one node (-1 = all).
	Node msg.NodeID
	// Types restricts to a message-type subset (empty = all).
	Types []msg.Type
}

// Match reports whether m passes the filter.
func (f *Filter) Match(m *msg.Message) bool {
	if f == nil {
		return true
	}
	if f.Addr != 0 && m.Addr != f.Addr {
		return false
	}
	if f.Node >= 0 && m.Src != f.Node && m.Dst != f.Node {
		return false
	}
	if len(f.Types) > 0 {
		ok := false
		for _, t := range f.Types {
			if m.Type == t {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Recorder captures message events into a bounded ring buffer.
type Recorder struct {
	filter  *Filter
	ring    []Event
	next    int
	wrapped bool
	total   uint64
}

// NewRecorder creates a recorder keeping the most recent capacity events
// that pass the filter (filter may be nil). Use Filter.Node = -1 to match
// all nodes.
func NewRecorder(capacity int, filter *Filter) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{filter: filter, ring: make([]Event, capacity)}
}

// Attach hooks the recorder into a network through its observability
// sink: if none is attached yet, a metrics-only sink is installed (the
// recorder keeps its own ring); if one is already there — e.g. a caller
// exporting a Perfetto trace — the recorder chains onto its tap, so both
// consumers see every event.
func (r *Recorder) Attach(n *network.Network) {
	if n.Obs == nil {
		n.Obs = obs.NewSink(0)
	}
	prev := n.Obs.Tap
	n.Obs.Tap = func(e obs.Event) {
		if prev != nil {
			prev(e)
		}
		if e.Kind == obs.KindSend {
			r.Record(e.At, &e.Msg)
		}
	}
}

// Record adds one event (exported so other layers can inject).
func (r *Recorder) Record(at sim.Time, m *msg.Message) {
	if !r.filter.Match(m) {
		return
	}
	r.total++
	r.ring[r.next] = Event{At: at, Msg: *m}
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
}

// Total reports how many events were recorded (including overwritten ones).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events in time order.
func (r *Recorder) Events() []Event {
	var out []Event
	if r.wrapped {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring[:r.next]...)
	}
	return out
}

// Dump renders the retained timeline.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintf(w, "[%10d] %s\n", uint64(e.At), describe(&e.Msg))
	}
}

// describe renders one message in protocol-story form.
func describe(m *msg.Message) string {
	base := fmt.Sprintf("%-15s %2d -> %-2d line %#x", m.Type, m.Src, m.Dst, uint64(m.Addr))
	switch m.Type {
	case msg.ExclReply, msg.UpgradeAck, msg.Delegate:
		return fmt.Sprintf("%s  (acks=%d v=%d)", base, m.AckCount, m.Version)
	case msg.SharedReply, msg.SharedResponse, msg.ExclResponse, msg.Update,
		msg.SharedWriteback, msg.Writeback, msg.Undelegate:
		return fmt.Sprintf("%s  (v=%d)", base, m.Version)
	case msg.Intervention, msg.TransferReq:
		return fmt.Sprintf("%s  (for node %d, epoch %d)", base, m.Requester, m.GrantTxn)
	case msg.Invalidate, msg.InvAck:
		return fmt.Sprintf("%s  (for node %d)", base, m.Requester)
	case msg.NewHomeHint:
		return fmt.Sprintf("%s  (new home %d)", base, m.Owner)
	}
	return base
}

// LineStory summarizes one line's recorded lifecycle: counts by message
// type plus the delegation timeline.
type LineStory struct {
	Addr        msg.Addr
	First, Last sim.Time
	Counts      map[msg.Type]int
	Delegations []sim.Time
	Undeleg     []sim.Time
}

// Stories groups retained events per line, most active lines first.
func (r *Recorder) Stories() []*LineStory {
	byLine := make(map[msg.Addr]*LineStory)
	for _, e := range r.Events() {
		st := byLine[e.Msg.Addr]
		if st == nil {
			st = &LineStory{Addr: e.Msg.Addr, First: e.At, Counts: make(map[msg.Type]int)}
			byLine[e.Msg.Addr] = st
		}
		st.Last = e.At
		st.Counts[e.Msg.Type]++
		switch e.Msg.Type {
		case msg.Delegate:
			st.Delegations = append(st.Delegations, e.At)
		case msg.Undelegate:
			st.Undeleg = append(st.Undeleg, e.At)
		}
	}
	out := make([]*LineStory, 0, len(byLine))
	for _, st := range byLine {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := total(out[i]), total(out[j])
		if ni != nj {
			return ni > nj
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

func total(s *LineStory) int {
	n := 0
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// DumpStories renders the per-line summaries.
func (r *Recorder) DumpStories(w io.Writer) {
	for _, st := range r.Stories() {
		fmt.Fprintf(w, "line %#x: %d msgs over [%d..%d]", uint64(st.Addr), total(st), uint64(st.First), uint64(st.Last))
		if len(st.Delegations) > 0 {
			fmt.Fprintf(w, ", delegated %dx", len(st.Delegations))
		}
		if len(st.Undeleg) > 0 {
			fmt.Fprintf(w, ", undelegated %dx", len(st.Undeleg))
		}
		fmt.Fprintln(w)
		// Stable type order for readability.
		var types []msg.Type
		for t := range st.Counts {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			fmt.Fprintf(w, "    %-16s %d\n", t, st.Counts[t])
		}
	}
}
