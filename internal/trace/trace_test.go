package trace

import (
	"bytes"
	"strings"
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/network"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

func ev(t msg.Type, src, dst msg.NodeID, addr msg.Addr) *msg.Message {
	return &msg.Message{Type: t, Src: src, Dst: dst, Addr: addr}
}

func TestRecordAndDump(t *testing.T) {
	r := NewRecorder(16, nil)
	r.Record(10, ev(msg.GetShared, 1, 0, 0x100))
	r.Record(20, ev(msg.SharedReply, 0, 1, 0x100))
	if r.Total() != 2 {
		t.Fatalf("Total = %d", r.Total())
	}
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "GetShared") || !strings.Contains(out, "SharedReply") {
		t.Fatalf("dump missing events:\n%s", out)
	}
	if strings.Index(out, "GetShared") > strings.Index(out, "SharedReply") {
		t.Fatal("events out of order")
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRecorder(4, nil)
	for i := 0; i < 10; i++ {
		r.Record(sim.Time(i), ev(msg.GetShared, 0, 1, msg.Addr(i*128)))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].At != 6 || evs[3].At != 9 {
		t.Fatalf("ring kept wrong window: %v..%v", evs[0].At, evs[3].At)
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestFilterByAddr(t *testing.T) {
	r := NewRecorder(16, &Filter{Addr: 0x200, Node: -1})
	r.Record(1, ev(msg.GetShared, 0, 1, 0x100))
	r.Record(2, ev(msg.GetShared, 0, 1, 0x200))
	if len(r.Events()) != 1 || r.Events()[0].Msg.Addr != 0x200 {
		t.Fatalf("filter failed: %v", r.Events())
	}
}

func TestFilterByNodeAndType(t *testing.T) {
	r := NewRecorder(16, &Filter{Node: 3, Types: []msg.Type{msg.Update}})
	r.Record(1, ev(msg.Update, 0, 3, 0x100))    // match (dst)
	r.Record(2, ev(msg.Update, 3, 5, 0x100))    // match (src)
	r.Record(3, ev(msg.Update, 0, 1, 0x100))    // wrong node
	r.Record(4, ev(msg.GetShared, 0, 3, 0x100)) // wrong type
	if len(r.Events()) != 2 {
		t.Fatalf("filtered to %d events, want 2", len(r.Events()))
	}
}

func TestAttachToNetwork(t *testing.T) {
	eng := sim.NewEngine()
	cfg := network.DefaultConfig()
	cfg.Nodes = 4
	n := network.New(eng, cfg, stats.New())
	n.Register(1, func(m *msg.Message) {})
	r := NewRecorder(16, nil)
	r.Attach(n)
	n.Send(ev(msg.GetExcl, 0, 1, 0x300))
	eng.Run()
	if r.Total() != 1 {
		t.Fatalf("attached recorder captured %d events", r.Total())
	}
}

func TestStories(t *testing.T) {
	r := NewRecorder(64, nil)
	// Line 0x100: busy; line 0x200: delegated once.
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), ev(msg.GetShared, 1, 0, 0x100))
	}
	r.Record(10, ev(msg.Delegate, 0, 2, 0x200))
	r.Record(20, ev(msg.Undelegate, 2, 0, 0x200))
	stories := r.Stories()
	if len(stories) != 2 {
		t.Fatalf("%d stories, want 2", len(stories))
	}
	if stories[0].Addr != 0x100 {
		t.Fatal("stories not sorted by activity")
	}
	var st *LineStory
	for _, s := range stories {
		if s.Addr == 0x200 {
			st = s
		}
	}
	if len(st.Delegations) != 1 || len(st.Undeleg) != 1 {
		t.Fatalf("delegation timeline wrong: %+v", st)
	}
	var buf bytes.Buffer
	r.DumpStories(&buf)
	if !strings.Contains(buf.String(), "delegated 1x") {
		t.Fatalf("story dump missing delegation:\n%s", buf.String())
	}
}

func TestDescribeVariants(t *testing.T) {
	// Every message type must render without panicking.
	for ty := msg.Type(0); int(ty) < msg.NumTypes; ty++ {
		m := ev(ty, 0, 1, 0x100)
		if describe(m) == "" {
			t.Fatalf("%v described as empty", ty)
		}
	}
}

func TestNilFilterMatchesAll(t *testing.T) {
	var f *Filter
	if !f.Match(ev(msg.GetShared, 0, 1, 0x1)) {
		t.Fatal("nil filter rejected a message")
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(0, nil)
	if len(r.ring) == 0 {
		t.Fatal("zero capacity not defaulted")
	}
}
